package setagreement

import (
	"fmt"
	"time"

	"setagreement/internal/register"
	"setagreement/internal/shmem"
	"setagreement/internal/snapshot"
)

// MemoryBackend selects the native shared-memory substrate the object's
// registers and snapshots live in. Every snapshot runtime (SnapshotImpl)
// runs on every backend; the backend only changes how each atomic step is
// synchronized between goroutines.
type MemoryBackend int

const (
	// BackendLockFree (default) keeps each register in its own atomic
	// cell and each snapshot object behind a single atomic pointer to an
	// immutable version: reads, writes and scans are wait-free and never
	// block, updates install a new version by compare-and-swap and are
	// lock-free (a failed swap means a concurrent update completed).
	BackendLockFree MemoryBackend = iota
	// BackendLocked guards every operation of every goroutine with one
	// mutex — the original runtime, kept for comparison and as the
	// reference implementation.
	BackendLocked
)

// String names the backend.
func (b MemoryBackend) String() string {
	switch b {
	case BackendLockFree, BackendLocked:
		return b.internal().Name()
	default:
		return fmt.Sprintf("memorybackend(%d)", int(b))
	}
}

func (b MemoryBackend) internal() shmem.Backend {
	switch b {
	case BackendLocked:
		return register.LockedBackend
	default:
		return register.LockFreeBackend
	}
}

// SnapshotImpl selects how the object's snapshot is realized over registers.
type SnapshotImpl int

const (
	// SnapshotAtomic uses a mutex-linearized snapshot object (default):
	// one lock acquisition per operation.
	SnapshotAtomic SnapshotImpl = iota
	// SnapshotWaitFree uses the wait-free register construction with
	// embedded scans (r registers for r components).
	SnapshotWaitFree
	// SnapshotSingleWriter uses the single-writer emulation (n registers
	// regardless of component count) — the min(·, n) branch of the
	// paper's Theorems 7/8.
	SnapshotSingleWriter
	// SnapshotDoubleCollect uses the non-blocking double-collect
	// construction, the only register construction here that supports
	// anonymous processes.
	SnapshotDoubleCollect
)

// String names the runtime.
func (s SnapshotImpl) String() string { return s.internal().String() }

func (s SnapshotImpl) internal() snapshot.Impl {
	switch s {
	case SnapshotWaitFree:
		return snapshot.ImplMW
	case SnapshotSingleWriter:
		return snapshot.ImplSWEmulation
	case SnapshotDoubleCollect:
		return snapshot.ImplDoubleCollect
	default:
		return snapshot.ImplAtomic
	}
}

// Option configures an agreement object.
type Option interface {
	apply(*options) error
}

type options struct {
	m           int
	impl        SnapshotImpl
	backend     MemoryBackend
	backoffMin  time.Duration
	backoffMax  time.Duration
	backoffStep int
	codec       any // Codec[T] supplied by WithCodec; resolved per entry point
}

func buildOptions(opts []Option) (options, error) {
	o := options{m: 1}
	for _, op := range opts {
		if err := op.apply(&o); err != nil {
			return options{}, err
		}
	}
	return o, nil
}

type optionFunc func(*options) error

func (f optionFunc) apply(o *options) error { return f(o) }

// WithObstruction sets m, the maximum number of concurrently executing
// processes under which every Propose is guaranteed to terminate. Larger m
// gives a stronger progress guarantee but requires m ≤ k and costs
// registers: min(n+2m−k, n). The default is 1 (obstruction-freedom).
func WithObstruction(m int) Option {
	return optionFunc(func(o *options) error {
		if m < 1 {
			return fmt.Errorf("setagreement: obstruction degree must be ≥ 1, got %d", m)
		}
		o.m = m
		return nil
	})
}

// WithSnapshot selects the snapshot runtime.
func WithSnapshot(impl SnapshotImpl) Option {
	return optionFunc(func(o *options) error {
		switch impl {
		case SnapshotAtomic, SnapshotWaitFree, SnapshotSingleWriter, SnapshotDoubleCollect:
			o.impl = impl
			return nil
		default:
			return fmt.Errorf("setagreement: unknown snapshot runtime %d", impl)
		}
	})
}

// WithMemoryBackend selects the native shared-memory backend. The default
// is BackendLockFree; BackendLocked restores the mutex-serialized substrate.
func WithMemoryBackend(b MemoryBackend) Option {
	return optionFunc(func(o *options) error {
		switch b {
		case BackendLockFree, BackendLocked:
			o.backend = b
			return nil
		default:
			return fmt.Errorf("setagreement: unknown memory backend %d", b)
		}
	})
}

// WithCodec fixes the value codec a generic entry point uses instead of
// the default (IdentityCodec for int, NewInterningCodec for every other
// domain). The codec's domain must match the entry point's type parameter,
// e.g. New[color](..., WithCodec(myColorCodec)); a mismatch fails at
// construction. Supplying a codec lets callers use stable application
// codes (dense enums, pre-assigned ids) instead of first-seen interning.
func WithCodec[T comparable](c Codec[T]) Option {
	return optionFunc(func(o *options) error {
		if c == nil {
			return fmt.Errorf("setagreement: WithCodec needs a non-nil codec")
		}
		o.codec = c
		return nil
	})
}

// WithBackoff makes each Propose sleep between shared-memory operations
// once it has run for a while without deciding, doubling from min to max
// every `window` operations. Backoff is how obstruction-free algorithms are
// made to terminate in practice (see the paper's introduction): sleeping
// processes yield the solo window another process needs. The sleeps honor
// the Propose context: cancellation interrupts a sleeping process promptly.
func WithBackoff(min, max time.Duration, window int) Option {
	return optionFunc(func(o *options) error {
		if min <= 0 || max < min || window < 1 {
			return fmt.Errorf("setagreement: invalid backoff (min=%v max=%v window=%d)", min, max, window)
		}
		o.backoffMin = min
		o.backoffMax = max
		o.backoffStep = window
		return nil
	})
}

func (o options) newBackoff() *backoffState {
	if o.backoffMin == 0 {
		return nil
	}
	return &backoffState{min: o.backoffMin, max: o.backoffMax, window: o.backoffStep}
}

// backoffState implements per-Propose exponential backoff between
// shared-memory operations. step reports how long the caller should sleep
// before the next operation (0 = no sleep); the sleep itself lives in
// guardMem, which knows the Propose context.
type backoffState struct {
	min, max time.Duration
	window   int
	ops      int
	cur      time.Duration
}

func (b *backoffState) step() time.Duration {
	b.ops++
	if b.ops%b.window != 0 {
		return 0
	}
	if b.cur == 0 {
		b.cur = b.min
	} else if b.cur < b.max {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
	return b.cur
}

// reset rewinds the backoff for the next Propose, matching the fresh state
// each Propose used to allocate.
func (b *backoffState) reset() {
	b.ops = 0
	b.cur = 0
}
