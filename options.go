package setagreement

import (
	"fmt"
	"time"

	"setagreement/internal/register"
	"setagreement/internal/shmem"
	"setagreement/internal/snapshot"
	"setagreement/obs"
)

// MemoryBackend selects the native shared-memory substrate the object's
// registers and snapshots live in. Every snapshot runtime (SnapshotImpl)
// runs on every backend; the backend only changes how each atomic step is
// synchronized between goroutines.
type MemoryBackend int

const (
	// BackendLockFree (default) keeps each register in its own atomic
	// cell and each snapshot object behind a single atomic pointer to an
	// immutable version: reads, writes and scans are wait-free and never
	// block, updates install a new version by compare-and-swap and are
	// lock-free (a failed swap means a concurrent update completed).
	BackendLockFree MemoryBackend = iota
	// BackendLocked guards every operation of every goroutine with one
	// mutex — the original runtime, kept for comparison and as the
	// reference implementation.
	BackendLocked
)

// String names the backend.
func (b MemoryBackend) String() string {
	switch b {
	case BackendLockFree, BackendLocked:
		return b.internal().Name()
	default:
		return fmt.Sprintf("memorybackend(%d)", int(b))
	}
}

func (b MemoryBackend) internal() shmem.Backend {
	switch b {
	case BackendLocked:
		return register.LockedBackend
	default:
		return register.LockFreeBackend
	}
}

// SnapshotImpl selects how the object's snapshot is realized over registers.
type SnapshotImpl int

const (
	// SnapshotAtomic uses a mutex-linearized snapshot object (default):
	// one lock acquisition per operation.
	SnapshotAtomic SnapshotImpl = iota
	// SnapshotWaitFree uses the wait-free register construction with
	// embedded scans (r registers for r components).
	SnapshotWaitFree
	// SnapshotSingleWriter uses the single-writer emulation (n registers
	// regardless of component count) — the min(·, n) branch of the
	// paper's Theorems 7/8.
	SnapshotSingleWriter
	// SnapshotDoubleCollect uses the non-blocking double-collect
	// construction, the only register construction here that supports
	// anonymous processes.
	SnapshotDoubleCollect
)

// String names the runtime.
func (s SnapshotImpl) String() string { return s.internal().String() }

func (s SnapshotImpl) internal() snapshot.Impl {
	switch s {
	case SnapshotWaitFree:
		return snapshot.ImplMW
	case SnapshotSingleWriter:
		return snapshot.ImplSWEmulation
	case SnapshotDoubleCollect:
		return snapshot.ImplDoubleCollect
	default:
		return snapshot.ImplAtomic
	}
}

// WaitStrategy selects how a Propose that is not making progress waits for
// the shared memory to change before its next attempt. Strategies only
// engage at the yield points of the backoff schedule (WithBackoff, or the
// default schedule installed when an event-driven strategy is chosen
// without one); between yield points every strategy steps at full speed.
type WaitStrategy int

const (
	// WaitBackoff (default) sleeps blindly for the scheduled backoff
	// duration — the original behavior, kept as the reference strategy.
	// With no WithBackoff configured it never sleeps at all.
	WaitBackoff WaitStrategy = iota
	// WaitNotify blocks on the memory's change notifier (shmem.Notifier)
	// until another process writes, with the scheduled backoff duration as
	// a timeout cap — the liveness fallback that keeps obstruction-freedom
	// intact (a wait can never outlast the cap) and the whole strategy
	// working on backends without the capability (it degrades to
	// WaitBackoff). A process that has seen no foreign write since its
	// previous yield point skips the wait entirely: notify never blocks a
	// solo process.
	WaitNotify
	// WaitHybrid spins briefly polling the change version (cheap on
	// multicore, where the conflicting write often lands within
	// microseconds), then falls back to the blocking notify-wait of
	// WaitNotify.
	WaitHybrid
)

// String names the strategy.
func (s WaitStrategy) String() string {
	switch s {
	case WaitBackoff:
		return "backoff"
	case WaitNotify:
		return "notify"
	case WaitHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("waitstrategy(%d)", int(s))
	}
}

// Default wait schedule installed when an event-driven strategy is selected
// without WithBackoff: yield every 64 operations, cap waits at 100µs
// doubling to 10ms. The caps only bound how long a process can block when
// no wakeup comes (contention vanished); under contention the notifier
// wakes it as soon as the memory changes.
const (
	defaultWaitMin    = 100 * time.Microsecond
	defaultWaitMax    = 10 * time.Millisecond
	defaultWaitWindow = 64
)

// Option configures an agreement object.
type Option interface {
	apply(*options) error
}

type options struct {
	m             int
	impl          SnapshotImpl
	backend       MemoryBackend
	strategy      WaitStrategy
	backoffSet    bool
	backoffMin    time.Duration
	backoffMax    time.Duration
	backoffStep   int
	engineWorkers int  // 0 = GOMAXPROCS, resolved by engine.New
	noCombining   bool // WithScanCombining(false): disable the combiner
	codec         any  // Codec[T] supplied by WithCodec; resolved per entry point
	obs           *obs.Collector
}

func buildOptions(opts []Option) (options, error) {
	o := options{m: 1}
	for _, op := range opts {
		if err := op.apply(&o); err != nil {
			return options{}, err
		}
	}
	// Backoff arguments are validated here, once per object build, so every
	// entry point (including the arena's object mold) rejects a bad schedule
	// at construction instead of silently misbehaving at Propose time.
	if o.backoffSet {
		switch {
		case o.backoffMin <= 0:
			return options{}, fmt.Errorf("setagreement: backoff min must be positive, got %v", o.backoffMin)
		case o.backoffMax < o.backoffMin:
			return options{}, fmt.Errorf("setagreement: backoff max %v below min %v", o.backoffMax, o.backoffMin)
		case o.backoffStep < 1:
			return options{}, fmt.Errorf("setagreement: backoff window must be ≥ 1, got %d", o.backoffStep)
		}
	}
	return o, nil
}

type optionFunc func(*options) error

func (f optionFunc) apply(o *options) error { return f(o) }

// WithObstruction sets m, the maximum number of concurrently executing
// processes under which every Propose is guaranteed to terminate. Larger m
// gives a stronger progress guarantee but requires m ≤ k and costs
// registers: min(n+2m−k, n). The default is 1 (obstruction-freedom).
func WithObstruction(m int) Option {
	return optionFunc(func(o *options) error {
		if m < 1 {
			return fmt.Errorf("setagreement: obstruction degree must be ≥ 1, got %d", m)
		}
		o.m = m
		return nil
	})
}

// WithSnapshot selects the snapshot runtime.
func WithSnapshot(impl SnapshotImpl) Option {
	return optionFunc(func(o *options) error {
		switch impl {
		case SnapshotAtomic, SnapshotWaitFree, SnapshotSingleWriter, SnapshotDoubleCollect:
			o.impl = impl
			return nil
		default:
			return fmt.Errorf("setagreement: unknown snapshot runtime %d", impl)
		}
	})
}

// WithMemoryBackend selects the native shared-memory backend. The default
// is BackendLockFree; BackendLocked restores the mutex-serialized substrate.
func WithMemoryBackend(b MemoryBackend) Option {
	return optionFunc(func(o *options) error {
		switch b {
		case BackendLockFree, BackendLocked:
			o.backend = b
			return nil
		default:
			return fmt.Errorf("setagreement: unknown memory backend %d", b)
		}
	})
}

// WithCodec fixes the value codec a generic entry point uses instead of
// the default (IdentityCodec for int, NewInterningCodec for every other
// domain). The codec's domain must match the entry point's type parameter,
// e.g. New[color](..., WithCodec(myColorCodec)); a mismatch fails at
// construction. Supplying a codec lets callers use stable application
// codes (dense enums, pre-assigned ids) instead of first-seen interning.
func WithCodec[T comparable](c Codec[T]) Option {
	return optionFunc(func(o *options) error {
		if c == nil {
			return fmt.Errorf("setagreement: WithCodec needs a non-nil codec")
		}
		o.codec = c
		return nil
	})
}

// WithBackoff schedules the yield points of the wait strategy: every
// `window` shared-memory operations without deciding, the process yields
// for a duration doubling from min to max. Under WaitBackoff (the default
// strategy) the yield is a blind sleep — how obstruction-free algorithms
// are made to terminate in practice (see the paper's introduction):
// sleeping processes yield the solo window another process needs. Under
// WaitNotify/WaitHybrid the duration is instead the cap on an event-driven
// wait that ends as soon as the memory changes. Waits and sleeps honor the
// Propose context: cancellation interrupts them promptly. Arguments are
// validated at construction: min must be positive, max ≥ min, window ≥ 1.
func WithBackoff(min, max time.Duration, window int) Option {
	return optionFunc(func(o *options) error {
		o.backoffSet = true
		o.backoffMin = min
		o.backoffMax = max
		o.backoffStep = window
		return nil
	})
}

// WithEngine sets the worker count of the object's async proposal engine —
// the concurrency ceiling for ProposeAsync proposals advancing at once.
// The engine itself is created lazily at the first ProposeAsync (purely
// synchronous users never pay for it), its drain goroutines are transient
// (zero goroutines while every proposal is parked or the engine is idle),
// and on an arena the engine is one, shared by all objects across all
// shards (set it through WithObjectOptions). The default (0) uses
// GOMAXPROCS workers.
func WithEngine(workers int) Option {
	return optionFunc(func(o *options) error {
		if workers < 0 {
			return fmt.Errorf("setagreement: engine worker count must be ≥ 0, got %d", workers)
		}
		o.engineWorkers = workers
		return nil
	})
}

// WithScanCombining enables or disables version-keyed scan combining
// (default enabled). When a publish wakes several waiting proposers at the
// same change version, one of them scans and publishes {version, view} in
// an atomic combining slot; the others adopt the published view instead of
// re-scanning, falling back to a private scan the moment the version has
// moved. An adopted view is keyed to the exact change version the adopter
// itself observed, which makes it indistinguishable from a scan the adopter
// performed — linearizability and m-obstruction-freedom are untouched (see
// DESIGN.md). Combining engages only on wakeups, so solo proposers never
// touch the slot; disable it to measure the uncombined baseline (see
// sabench's `scans` table).
func WithScanCombining(enabled bool) Option {
	return optionFunc(func(o *options) error {
		o.noCombining = !enabled
		return nil
	})
}

// WithObservability attaches an obs.Collector to the object (or, through
// WithObjectOptions, to every object of an arena): the collector's
// per-stage latency histograms, lifecycle counters and recent-event ring
// then record every proposal's lifecycle — submit, first step, each
// park/wake pair with its wake reason and run-queue position, the
// decision and its completion-queue delivery — plus the synchronous
// path's waits and solo-run skips. Read it with Collector.Snapshot (or
// Arena.Observe), serve it live with obs/obshttp, and see the `obs`
// sabench table for the per-stage breakdown under load.
//
// Observability is off by default and its disabled path is free: without
// a collector the instrumented paths make nil-receiver no-op calls that
// allocate nothing (see TestObservabilityDisabledOverhead). One collector
// may serve any number of objects; events are keyed by (object key,
// process id).
func WithObservability(c *obs.Collector) Option {
	return optionFunc(func(o *options) error {
		o.obs = c
		return nil
	})
}

// WithWaitStrategy selects how contended Proposes wait between attempts:
// WaitBackoff (blind timed sleeps, the default), WaitNotify (block until
// the memory changes, capped by the backoff schedule), or WaitHybrid (spin
// briefly, then notify-wait). Event-driven strategies install a default
// schedule (100µs–10ms cap, window 64) when WithBackoff is not given.
func WithWaitStrategy(s WaitStrategy) Option {
	return optionFunc(func(o *options) error {
		switch s {
		case WaitBackoff, WaitNotify, WaitHybrid:
			o.strategy = s
			return nil
		default:
			return fmt.Errorf("setagreement: unknown wait strategy %d", s)
		}
	})
}

// newWait assembles the per-handle wait plan, or nil when the handle should
// never yield (the default strategy with no backoff configured — a pure
// spin, today's zero-configuration behavior).
func (o options) newWait() *waitPlan {
	min, max, window := o.backoffMin, o.backoffMax, o.backoffStep
	if !o.backoffSet {
		if o.strategy == WaitBackoff {
			return nil
		}
		min, max, window = defaultWaitMin, defaultWaitMax, defaultWaitWindow
	}
	return &waitPlan{
		strategy: o.strategy,
		backoff:  backoffState{min: min, max: max, window: window},
	}
}

// backoffState implements per-Propose exponential backoff between
// shared-memory operations. step reports how long the caller should sleep
// before the next operation (0 = no sleep); the sleep itself lives in
// guardMem, which knows the Propose context.
type backoffState struct {
	min, max time.Duration
	window   int
	ops      int
	cur      time.Duration
}

func (b *backoffState) step() time.Duration {
	b.ops++
	if b.ops%b.window != 0 {
		return 0
	}
	if b.cur == 0 {
		b.cur = b.min
	} else if b.cur < b.max {
		b.cur *= 2
		if b.cur > b.max {
			b.cur = b.max
		}
	}
	return b.cur
}

// reset rewinds the backoff for the next Propose, matching the fresh state
// each Propose used to allocate.
func (b *backoffState) reset() {
	b.ops = 0
	b.cur = 0
}
