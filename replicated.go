package setagreement

import (
	"context"
	"fmt"
)

// Replicated is a Herlihy-style universal construction over repeated
// consensus: it turns any deterministic sequential state machine into a
// linearizable replicated object. This is the application the paper's
// introduction motivates repeated agreement with (its reference [8]).
//
// Each participating process holds a Replica. To execute an operation, a
// replica proposes it for the next log slot; repeated consensus (k = 1)
// decides which operation owns each slot, every replica applies the decided
// operations in slot order, and the proposer retries in later slots until
// its own operation is decided. Decided prefixes are identical at all
// replicas, so all copies of the state agree.
//
// Replicated is built directly on the typed Repeated object: slots decide
// tagged operations, interned by the object's default codec, and each
// replica proposes through its claimed Handle — the fixed-process model the
// universal construction assumes.
//
// Progress is inherited from the underlying m-obstruction-free consensus:
// an Invoke is guaranteed to terminate only while at most m replicas are
// executing (and, like all obstruction-free operations, benefits from
// WithBackoff under contention). There is no helping, so a replica's
// operation can in principle be outrun indefinitely by others; bound Invoke
// with a context.
type Replicated[S any, O comparable] struct {
	apply   func(S, O) S
	initial func() S
	rep     *Repeated[taggedOp[O]]
}

// taggedOp distinguishes equal operations submitted by different replicas
// (or twice by one replica): slots decide tagged operations.
type taggedOp[O comparable] struct {
	Proc int
	Seq  int
	Op   O
}

// NewReplicated builds a replicated object for n processes. initial
// produces a fresh state; apply must be deterministic and side-effect free
// (it runs once per decided operation on every replica).
func NewReplicated[S any, O comparable](n int, initial func() S, apply func(S, O) S, opts ...Option) (*Replicated[S, O], error) {
	if initial == nil || apply == nil {
		return nil, fmt.Errorf("setagreement: NewReplicated needs initial and apply functions")
	}
	// The consensus value domain is the internal tagged-operation type, so
	// a caller-supplied codec cannot apply; reject it here with a clear
	// message rather than letting codec resolution fail on the internal
	// type.
	if o, err := buildOptions(opts); err != nil {
		return nil, err
	} else if o.codec != nil {
		return nil, fmt.Errorf("setagreement: NewReplicated does not accept WithCodec; operations are encoded by its internal codec")
	}
	rep, err := NewRepeated[taggedOp[O]](n, 1, opts...)
	if err != nil {
		return nil, err
	}
	return &Replicated[S, O]{apply: apply, initial: initial, rep: rep}, nil
}

// Registers returns the register footprint of the underlying consensus.
func (r *Replicated[S, O]) Registers() int { return r.rep.Registers() }

// Replica claims process id's replica (0 ≤ id < n). Each id may be claimed
// once — a second claim fails with ErrInUse, an out-of-range id with
// ErrBadID. A Replica is not safe for concurrent use (it is one process).
func (r *Replicated[S, O]) Replica(id int) (*Replica[S, O], error) {
	h, err := r.rep.Proc(id)
	if err != nil {
		return nil, err
	}
	return &Replica[S, O]{parent: r, h: h, state: r.initial()}, nil
}

// Replica is one process's copy of the replicated object.
type Replica[S any, O comparable] struct {
	parent *Replicated[S, O]
	h      *Handle[taggedOp[O]]
	seq    int
	slots  int // log slots applied so far
	state  S
}

// State returns the replica's current copy of the state: the result of
// applying the decided log prefix this replica has seen. It may lag other
// replicas but never diverges from the decided order.
func (rp *Replica[S, O]) State() S { return rp.state }

// Slots returns how many log slots the replica has applied.
func (rp *Replica[S, O]) Slots() int { return rp.slots }

// Stats returns the instrumentation of the replica's underlying consensus
// handle.
func (rp *Replica[S, O]) Stats() Stats { return rp.h.Stats() }

// Invoke appends op to the replicated log and returns the state right after
// op took effect. All replicas apply op at the same log position exactly
// once.
func (rp *Replica[S, O]) Invoke(ctx context.Context, op O) (S, error) {
	rp.seq++
	mine := taggedOp[O]{Proc: rp.h.ID(), Seq: rp.seq, Op: op}
	for {
		var zero S
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		decided, err := rp.h.Propose(ctx, mine)
		if err != nil {
			return zero, err
		}
		if decided.Seq != 0 { // skip Sync markers
			rp.state = rp.parent.apply(rp.state, decided.Op)
		}
		rp.slots++
		if decided == mine {
			return rp.state, nil
		}
	}
}

// Sync advances the replica through the next log slot without contributing
// an operation of its own — it proposes a no-op marker; if some other
// operation wins the slot it is applied, and if the marker itself wins, the
// slot is consumed by the marker (appliers skip it). Sync returns the
// updated state.
//
// Markers are modeled as tagged operations with Seq = 0, never produced by
// Invoke, and are skipped by apply.
func (rp *Replica[S, O]) Sync(ctx context.Context) (S, error) {
	var zeroOp O
	marker := taggedOp[O]{Proc: rp.h.ID(), Seq: 0, Op: zeroOp}
	var zero S
	decided, err := rp.h.Propose(ctx, marker)
	if err != nil {
		return zero, err
	}
	if decided.Seq != 0 {
		rp.state = rp.parent.apply(rp.state, decided.Op)
	}
	rp.slots++
	return rp.state, nil
}
