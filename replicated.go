package setagreement

import (
	"context"
	"fmt"
	"sync"
)

// Replicated is a Herlihy-style universal construction over repeated
// consensus: it turns any deterministic sequential state machine into a
// linearizable replicated object. This is the application the paper's
// introduction motivates repeated agreement with (its reference [8]).
//
// Each participating process holds a Replica. To execute an operation, a
// replica proposes it for the next log slot; repeated consensus (k = 1)
// decides which operation owns each slot, every replica applies the decided
// operations in slot order, and the proposer retries in later slots until
// its own operation is decided. Decided prefixes are identical at all
// replicas, so all copies of the state agree.
//
// Progress is inherited from the underlying m-obstruction-free consensus:
// an Invoke is guaranteed to terminate only while at most m replicas are
// executing (and, like all obstruction-free operations, benefits from
// WithBackoff under contention). There is no helping, so a replica's
// operation can in principle be outrun indefinitely by others; bound Invoke
// with a context.
type Replicated[S any, O comparable] struct {
	apply   func(S, O) S
	initial func() S
	rep     *Repeated
	mapped  *Mapped[taggedOp[O]]

	mu       sync.Mutex
	replicas map[int]bool
}

// taggedOp distinguishes equal operations submitted by different replicas
// (or twice by one replica): slots decide tagged operations.
type taggedOp[O comparable] struct {
	Proc int
	Seq  int
	Op   O
}

// NewReplicated builds a replicated object for n processes. initial
// produces a fresh state; apply must be deterministic and side-effect free
// (it runs once per decided operation on every replica).
func NewReplicated[S any, O comparable](n int, initial func() S, apply func(S, O) S, opts ...Option) (*Replicated[S, O], error) {
	if initial == nil || apply == nil {
		return nil, fmt.Errorf("setagreement: NewReplicated needs initial and apply functions")
	}
	rep, err := NewRepeated(n, 1, opts...)
	if err != nil {
		return nil, err
	}
	return &Replicated[S, O]{
		apply:    apply,
		initial:  initial,
		rep:      rep,
		mapped:   NewMapped[taggedOp[O]](rep),
		replicas: make(map[int]bool, n),
	}, nil
}

// Registers returns the register footprint of the underlying consensus.
func (r *Replicated[S, O]) Registers() int { return r.rep.Registers() }

// Replica returns process id's replica handle. Each id may be claimed once;
// a Replica is not safe for concurrent use (it is one process).
func (r *Replicated[S, O]) Replica(id int) (*Replica[S, O], error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.replicas[id] {
		return nil, fmt.Errorf("%w: replica %d already claimed", ErrInUse, id)
	}
	r.replicas[id] = true
	return &Replica[S, O]{parent: r, id: id, state: r.initial()}, nil
}

// Replica is one process's copy of the replicated object.
type Replica[S any, O comparable] struct {
	parent *Replicated[S, O]
	id     int
	seq    int
	slots  int // log slots applied so far
	state  S
}

// State returns the replica's current copy of the state: the result of
// applying the decided log prefix this replica has seen. It may lag other
// replicas but never diverges from the decided order.
func (rp *Replica[S, O]) State() S { return rp.state }

// Slots returns how many log slots the replica has applied.
func (rp *Replica[S, O]) Slots() int { return rp.slots }

// Invoke appends op to the replicated log and returns the state right after
// op took effect. All replicas apply op at the same log position exactly
// once.
func (rp *Replica[S, O]) Invoke(ctx context.Context, op O) (S, error) {
	rp.seq++
	mine := taggedOp[O]{Proc: rp.id, Seq: rp.seq, Op: op}
	for {
		var zero S
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		decided, err := rp.parent.mapped.Propose(ctx, rp.id, mine)
		if err != nil {
			return zero, err
		}
		if decided.Seq != 0 { // skip Sync markers
			rp.state = rp.parent.apply(rp.state, decided.Op)
		}
		rp.slots++
		if decided == mine {
			return rp.state, nil
		}
	}
}

// Sync advances the replica through the next log slot without contributing
// an operation of its own — it proposes a no-op marker; if some other
// operation wins the slot it is applied, and if the marker itself wins, the
// slot is consumed by the marker (appliers skip it). Sync returns the
// updated state.
//
// Markers are modeled as tagged operations with Seq = 0, never produced by
// Invoke, and are skipped by apply.
func (rp *Replica[S, O]) Sync(ctx context.Context) (S, error) {
	var zeroOp O
	marker := taggedOp[O]{Proc: rp.id, Seq: 0, Op: zeroOp}
	var zero S
	decided, err := rp.parent.mapped.Propose(ctx, rp.id, marker)
	if err != nil {
		return zero, err
	}
	if decided.Seq != 0 {
		rp.state = rp.parent.apply(rp.state, decided.Op)
	}
	rp.slots++
	return rp.state, nil
}
