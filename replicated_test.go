package setagreement_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"setagreement"
)

func TestReplicatedCounter(t *testing.T) {
	const n, opsEach = 4, 8
	obj, err := setagreement.NewReplicated[int, int](n,
		func() int { return 0 },
		func(s, delta int) int { return s + delta },
		setagreement.WithBackoff(time.Microsecond, time.Millisecond, 64),
	)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	replicas := make([]*setagreement.Replica[int, int], n)
	for id := range replicas {
		replicas[id], err = obj.Replica(id)
		if err != nil {
			t.Fatalf("Replica(%d): %v", id, err)
		}
	}

	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				if _, err := replicas[id].Invoke(ctx, 1); err != nil {
					t.Errorf("replica %d invoke %d: %v", id, i, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every increment was applied exactly once in the decided order, so
	// after syncing past all decided slots every replica converges on
	// n*opsEach.
	want := n * opsEach
	for id, rp := range replicas {
		for rp.State() < want {
			if _, err := rp.Sync(ctx); err != nil {
				t.Fatalf("replica %d sync: %v", id, err)
			}
		}
		if rp.State() != want {
			t.Fatalf("replica %d state = %d, want %d", id, rp.State(), want)
		}
	}
}

func TestReplicatedLogOrderIsAgreed(t *testing.T) {
	// An append-only log: all replicas must see the same sequence.
	const n = 3
	obj, err := setagreement.NewReplicated[[]string, string](n,
		func() []string { return nil },
		func(s []string, op string) []string {
			out := make([]string, len(s)+1)
			copy(out, s)
			out[len(s)] = op
			return out
		},
	)
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	ctx := context.Background()

	replicas := make([]*setagreement.Replica[[]string, string], n)
	for id := range replicas {
		replicas[id], err = obj.Replica(id)
		if err != nil {
			t.Fatalf("Replica: %v", err)
		}
	}
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			words := [][]string{{"ant", "bee"}, {"cat", "dog"}, {"elk", "fox"}}[id]
			for _, w := range words {
				if _, err := replicas[id].Invoke(ctx, w); err != nil {
					t.Errorf("replica %d: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Sync all replicas to the same slot count, then compare logs.
	maxSlots := 0
	for _, rp := range replicas {
		if rp.Slots() > maxSlots {
			maxSlots = rp.Slots()
		}
	}
	for _, rp := range replicas {
		for rp.Slots() < maxSlots {
			if _, err := rp.Sync(ctx); err != nil {
				t.Fatalf("sync: %v", err)
			}
		}
	}
	// Logs may differ in length only by trailing markers; compare the
	// common prefix of applied operations.
	base := replicas[0].State()
	for id := 1; id < n; id++ {
		other := replicas[id].State()
		short := base
		if len(other) < len(short) {
			short = other
		}
		for i := range short {
			if base[i] != other[i] {
				t.Fatalf("replica %d log diverged at %d: %v vs %v", id, i, base, other)
			}
		}
	}
	// Each replica's own words appear exactly once across the decided log.
	counts := make(map[string]int)
	for _, w := range base {
		counts[w]++
	}
	for _, w := range []string{"ant", "bee", "cat", "dog", "elk", "fox"} {
		if counts[w] != 1 {
			t.Fatalf("word %q applied %d times in %v", w, counts[w], base)
		}
	}
}

func TestReplicatedValidation(t *testing.T) {
	if _, err := setagreement.NewReplicated[int, int](3, nil, nil); err == nil {
		t.Fatal("nil functions accepted")
	}
	obj, err := setagreement.NewReplicated[int, int](2,
		func() int { return 0 }, func(s, o int) int { return s + o })
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	if obj.Registers() != 2 { // min(n+2m-k, n) with n=2, m=k=1
		t.Fatalf("Registers = %d", obj.Registers())
	}
	if _, err := obj.Replica(0); err != nil {
		t.Fatalf("Replica: %v", err)
	}
	if _, err := obj.Replica(0); !errors.Is(err, setagreement.ErrInUse) {
		t.Fatalf("double claim err = %v", err)
	}
}

func TestReplicatedRejectsCodec(t *testing.T) {
	// The consensus domain of the universal construction is internal, so a
	// caller codec cannot apply and must be rejected with a clear error at
	// construction.
	_, err := setagreement.NewReplicated[int, string](2,
		func() int { return 0 }, func(s int, _ string) int { return s },
		setagreement.WithCodec(setagreement.NewInterningCodec[string]()))
	if err == nil {
		t.Fatal("NewReplicated accepted WithCodec")
	}
}

func TestReplicaClaimValidatesID(t *testing.T) {
	// An out-of-range replica id fails at claim time with ErrBadID, not
	// later inside Invoke.
	obj, err := setagreement.NewReplicated[int, int](2,
		func() int { return 0 }, func(s, o int) int { return s + o })
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	if _, err := obj.Replica(2); !errors.Is(err, setagreement.ErrBadID) {
		t.Fatalf("Replica(2) err = %v, want ErrBadID", err)
	}
	if _, err := obj.Replica(-1); !errors.Is(err, setagreement.ErrBadID) {
		t.Fatalf("Replica(-1) err = %v, want ErrBadID", err)
	}
	// Valid ids are unaffected by rejected claims.
	rp, err := obj.Replica(1)
	if err != nil {
		t.Fatalf("Replica(1): %v", err)
	}
	if _, err := rp.Invoke(context.Background(), 7); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if got := rp.Stats().Proposes; got < 1 {
		t.Fatalf("replica stats Proposes = %d", got)
	}
}

func TestReplicatedInvokeRespectsContext(t *testing.T) {
	obj, err := setagreement.NewReplicated[int, int](2,
		func() int { return 0 }, func(s, o int) int { return s + o })
	if err != nil {
		t.Fatalf("NewReplicated: %v", err)
	}
	rp, err := obj.Replica(0)
	if err != nil {
		t.Fatalf("Replica: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rp.Invoke(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled invoke err = %v", err)
	}
}
