package setagreement

import (
	"errors"
	"fmt"
	"sync/atomic"

	"setagreement/internal/core"
	"setagreement/internal/shmem"
	"setagreement/internal/sim"
	"setagreement/internal/snapshot"
)

// Errors returned by handle claiming and Propose.
var (
	// ErrAlreadyProposed is returned by Propose on a one-shot handle that
	// has already decided.
	ErrAlreadyProposed = errors.New("setagreement: process already proposed")
	// ErrBadID is returned by Proc when the process identifier is outside
	// [0, n).
	ErrBadID = errors.New("setagreement: process id out of range")
	// ErrPoisoned is returned when a previous Propose on this handle was
	// cancelled mid-operation, leaving its half-written state behind.
	ErrPoisoned = errors.New("setagreement: process state unusable after cancelled Propose")
	// ErrTooManySessions is returned by Anonymous.Session beyond n.
	ErrTooManySessions = errors.New("setagreement: more sessions than processes")
	// ErrInUse is returned when a process id is claimed twice, or when two
	// goroutines Propose concurrently on one handle.
	ErrInUse = errors.New("setagreement: process already in use")
	// ErrReleased is returned by Propose on a handle whose owner has called
	// Release: the process has permanently left the object.
	ErrReleased = errors.New("setagreement: handle released")
	// ErrEvicted is returned by an arena object that has been evicted; fetch
	// the current object for the key with Arena.Object again.
	ErrEvicted = errors.New("setagreement: object evicted from arena")
)

// object is the shared core of the three public agreement types: the
// algorithm, its runtime over the configured backend, and the value codec
// every handle of the object shares.
type object[T comparable] struct {
	alg   core.Algorithm
	rt    *runtime
	codec Codec[T]
}

// Registers returns the number of registers the object occupies — the
// paper's min(n+2m−k, n) for identified objects, (m+1)(n−k)+m²+1 (one
// fewer one-shot) for anonymous ones.
func (o *object[T]) Registers() int { return o.alg.Registers() }

// handle claims one process: it creates the algorithm's persistent local
// state and resolves the process's view of shared memory once, so Propose
// never pays for either again.
func (o *object[T]) handle(id int, oneShot bool) *Handle[T] {
	h := &Handle[T]{
		rt:      o.rt,
		codec:   o.codec,
		proc:    o.alg.NewProcess(id),
		id:      id,
		oneShot: oneShot,
	}
	// Every algorithm in this module exposes its Propose as a resumable
	// machine (core.Resumable) — Propose itself is the synchronous driver
	// over it, ProposeAsync the engine-driven one.
	res, ok := h.proc.(core.Resumable)
	if !ok {
		panic("setagreement: algorithm process is not core.Resumable")
	}
	h.res = res
	h.guard.inner = o.rt.wrap(id)
	h.guard.wait = o.rt.opts.newWait()
	h.guard.stats = &h.stats
	// Observability wiring: the collector (nil when disabled) plus the
	// event key — process id here, object key filled in by the arena.
	h.guard.rec = o.rt.opts.obs
	h.guard.obsProc = int32(id)
	if nt, ok := h.guard.inner.(shmem.Notifier); ok {
		h.guard.notifier = nt
		if o.rt.comb != nil {
			// Scan combining rides on the notifier: the combiner's slots are
			// keyed by its change version (see shmem.ViewCombiner).
			h.guard.comb = o.rt.comb
		}
		// Solo detection needs the notifier's version to tick exactly once
		// per logical mutation this guard issues; that holds only on the
		// atomic snapshot runtime, where guard operations are backend
		// operations 1:1. Register-implemented snapshots fan one logical
		// Update into several physical writes (and mw-waitfree scans write
		// helping records), so there every yield is treated as contended —
		// the capped wait still preserves obstruction-freedom.
		h.guard.notifyExact = o.rt.opts.impl == SnapshotAtomic
	}
	return h
}

// build assembles the shared object core for one entry point.
func build[T comparable](opts []Option, anonymous bool, mk func(o options) (core.Algorithm, error)) (object[T], error) {
	o, err := buildOptions(opts)
	if err != nil {
		return object[T]{}, err
	}
	codec, err := resolveCodec[T](o.codec)
	if err != nil {
		return object[T]{}, err
	}
	alg, err := mk(o)
	if err != nil {
		return object[T]{}, err
	}
	rt, err := newRuntime(alg, o, anonymous)
	if err != nil {
		return object[T]{}, err
	}
	return object[T]{alg: alg, rt: rt, codec: codec}, nil
}

// claims tracks which process ids of an identified object are claimed.
type claims struct {
	slots []atomic.Bool
}

func (c *claims) claim(id int) error {
	if id < 0 || id >= len(c.slots) {
		return fmt.Errorf("%w: %d of %d", ErrBadID, id, len(c.slots))
	}
	if !c.slots[id].CompareAndSwap(false, true) {
		return fmt.Errorf("%w: process %d already claimed", ErrInUse, id)
	}
	return nil
}

// Agreement is a one-shot m-obstruction-free k-set agreement object for n
// identified processes over min(n+2m−k, n) registers, with values drawn
// from T. Goroutines participate by claiming distinct process handles.
type Agreement[T comparable] struct {
	object[T]
	claims claims
}

// New builds a one-shot agreement object for n processes and at most k
// distinct decisions over domain T. By default termination is guaranteed
// under solo execution (m = 1); raise m with WithObstruction.
func New[T comparable](n, k int, opts ...Option) (*Agreement[T], error) {
	obj, err := build[T](opts, false, func(o options) (core.Algorithm, error) {
		return core.NewOneShot(core.Params{N: n, M: o.m, K: k})
	})
	if err != nil {
		return nil, err
	}
	return &Agreement[T]{object: obj, claims: claims{slots: make([]atomic.Bool, n)}}, nil
}

// Proc claims process id (0 ≤ id < n) and returns its handle. Each id may
// be claimed exactly once; on a one-shot object the handle supports a
// single Propose.
func (a *Agreement[T]) Proc(id int) (*Handle[T], error) {
	if err := a.claims.claim(id); err != nil {
		return nil, err
	}
	return a.handle(id, true), nil
}

// Repeated is an m-obstruction-free repeated k-set agreement object: an
// unbounded sequence of independent k-set agreement instances accessed in
// order, over the same min(n+2m−k, n) registers.
type Repeated[T comparable] struct {
	object[T]
	claims claims
}

// NewRepeated builds a repeated agreement object for n processes and at
// most k distinct decisions per instance over domain T.
func NewRepeated[T comparable](n, k int, opts ...Option) (*Repeated[T], error) {
	obj, err := build[T](opts, false, func(o options) (core.Algorithm, error) {
		return core.NewRepeated(core.Params{N: n, M: o.m, K: k})
	})
	if err != nil {
		return nil, err
	}
	return &Repeated[T]{object: obj, claims: claims{slots: make([]atomic.Bool, n)}}, nil
}

// Proc claims process id (0 ≤ id < n) and returns its handle. Each id may
// be claimed exactly once; the handle's first Propose accesses instance 1,
// the second instance 2, and so on.
func (r *Repeated[T]) Proc(id int) (*Handle[T], error) {
	if err := r.claims.claim(id); err != nil {
		return nil, err
	}
	return r.handle(id, false), nil
}

// Anonymous is the anonymous k-set agreement object of Figure 5:
// participants carry no identifiers and are all programmed identically. The
// repeated form occupies (m+1)(n−k)+m²+1 registers; the one-shot form saves
// the helper register H.
type Anonymous[T comparable] struct {
	object[T]
	oneShot  bool
	sessions atomic.Int32
}

// NewAnonymous builds an anonymous repeated agreement object for up to n
// concurrent participants. Anonymous objects support only the atomic and
// double-collect snapshot runtimes (the others need process identifiers).
func NewAnonymous[T comparable](n, k int, opts ...Option) (*Anonymous[T], error) {
	return newAnonymous[T](n, k, false, opts)
}

// NewAnonymousOneShot builds the one-shot variant: each session proposes at
// most once, and the object occupies one register fewer ((m+1)(n−k)+m², the
// anonymous one-shot cell of the paper's Figure 1).
func NewAnonymousOneShot[T comparable](n, k int, opts ...Option) (*Anonymous[T], error) {
	return newAnonymous[T](n, k, true, opts)
}

func newAnonymous[T comparable](n, k int, oneShot bool, opts []Option) (*Anonymous[T], error) {
	obj, err := build[T](opts, true, func(o options) (core.Algorithm, error) {
		if oneShot {
			return core.NewAnonOneShot(core.Params{N: n, M: o.m, K: k})
		}
		return core.NewAnonRepeated(core.Params{N: n, M: o.m, K: k})
	})
	if err != nil {
		return nil, err
	}
	return &Anonymous[T]{object: obj, oneShot: oneShot}, nil
}

// Session claims a handle for a new anonymous participant. At most n
// sessions may be created; like every handle, a session is one process and
// supports one Propose at a time.
func (a *Anonymous[T]) Session() (*Handle[T], error) {
	n := int32(a.alg.Params().N)
	for {
		cur := a.sessions.Load()
		if cur >= n {
			return nil, fmt.Errorf("%w: n=%d", ErrTooManySessions, n)
		}
		if a.sessions.CompareAndSwap(cur, cur+1) {
			return a.handle(sim.Anonymous, a.oneShot), nil
		}
	}
}

// runtime owns the native shared memory of one agreement object: mem is
// the backend memory allocated by Materialize (the anchor for object-wide
// instrumentation), wrap yields one process's view over it — resolved
// once per handle, at claim time — and eng is the object's async proposal
// engine (lazily created; shared arena-wide when the arena built the
// runtime). The memory comes from the configured backend
// (WithMemoryBackend); the runtime itself is backend-agnostic.
type runtime struct {
	mem  shmem.Mem
	wrap func(id int) shmem.Mem
	opts options
	eng  *engineRef
	// comb is the object's scan-combining slot, one per snapshot object
	// (nil when WithScanCombining(false)); handles wire it into their
	// guards only when the memory has the Notifier capability. On an arena
	// it recycles with the memory through the pool.
	comb *shmem.ScanCombiner
}

func newRuntime(alg core.Algorithm, o options, anonymous bool) (*runtime, error) {
	impl := o.impl.internal()
	if anonymous && (impl == snapshot.ImplMW || impl == snapshot.ImplSWEmulation) {
		return nil, fmt.Errorf("setagreement: snapshot runtime %v needs process identifiers; anonymous objects support SnapshotAtomic or SnapshotDoubleCollect", o.impl)
	}
	mem, wrap, err := snapshot.Materialize(alg.Spec(), impl, alg.Params().N, o.backend.internal())
	if err != nil {
		return nil, err
	}
	rt := &runtime{mem: mem, wrap: wrap, opts: o, eng: &engineRef{workers: o.engineWorkers, obsv: observerFor(o.obs)}}
	if !o.noCombining {
		rt.comb = shmem.NewScanCombiner(len(alg.Spec().Snaps))
	}
	return rt, nil
}
