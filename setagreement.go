// Package setagreement is a production-oriented implementation of the
// m-obstruction-free k-set agreement algorithms of Delporte-Gallet,
// Fauconnier, Kuznetsov and Ruppert, "On the Space Complexity of Set
// Agreement" (PODC 2015).
//
// k-set agreement lets n processes each propose a value and decide values
// such that at most k distinct values are decided; k = 1 is consensus. The
// algorithms here are m-obstruction-free: they are safe under any schedule
// and guarantee termination whenever at most m processes are executing
// concurrently (m = 1 is classic obstruction-freedom). Space is the paper's
// headline: the non-anonymous algorithms use min(n+2m−k, n) registers and
// the anonymous one (m+1)(n−k)+m²+1.
//
// Three entry points mirror the paper's three algorithms:
//
//   - New (one-shot, Figure 3): each process proposes once.
//   - NewRepeated (Figure 4): an unbounded ordered sequence of independent
//     agreement instances, as needed by universal constructions.
//   - NewAnonymous (Figure 5): processes have no identifiers at all.
//
// Termination caveat: obstruction-free operations may run forever under
// sustained contention. Use contexts to bound Propose calls, and WithBackoff
// to make progress likely under contention (the scheduling-based approach
// the paper's introduction describes).
//
// The native runtime is pluggable: WithMemoryBackend selects the
// shared-memory substrate (lock-free atomic cells by default, or the
// mutex-serialized reference backend), independently of WithSnapshot's
// choice of snapshot construction.
//
// The repository around this package also contains the deterministic
// simulator, the executable lower-bound adversaries for the paper's
// Theorems 2 and 10, and the benchmark harness reproducing its Figure 1;
// see README.md and DESIGN.md.
package setagreement

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"setagreement/internal/core"
	"setagreement/internal/shmem"
	"setagreement/internal/sim"
	"setagreement/internal/snapshot"
)

// Errors returned by Propose and session management.
var (
	// ErrAlreadyProposed is returned by one-shot Propose when the
	// process identifier has already proposed.
	ErrAlreadyProposed = errors.New("setagreement: process already proposed")
	// ErrBadID is returned when a process identifier is outside [0, n).
	ErrBadID = errors.New("setagreement: process id out of range")
	// ErrPoisoned is returned when a previous Propose for this process
	// was cancelled mid-operation, leaving its half-written state behind.
	ErrPoisoned = errors.New("setagreement: process state unusable after cancelled Propose")
	// ErrTooManySessions is returned by Anonymous.Session beyond n.
	ErrTooManySessions = errors.New("setagreement: more sessions than processes")
	// ErrInUse is returned when two goroutines share one process id.
	ErrInUse = errors.New("setagreement: concurrent Propose on the same process")
)

// Agreement is a one-shot m-obstruction-free k-set agreement object for n
// identified processes over min(n+2m−k, n) registers. It is safe for
// concurrent use by goroutines acting as distinct process ids.
type Agreement struct {
	alg  *core.OneShot
	rt   *runtime
	mu   sync.Mutex
	used map[int]state
}

// New builds a one-shot agreement object for n processes and at most k
// distinct decisions. By default termination is guaranteed under solo
// execution (m = 1); raise m with WithObstruction.
func New(n, k int, opts ...Option) (*Agreement, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	alg, err := core.NewOneShot(core.Params{N: n, M: o.m, K: k})
	if err != nil {
		return nil, err
	}
	rt, err := newRuntime(alg, o, false)
	if err != nil {
		return nil, err
	}
	return &Agreement{alg: alg, rt: rt, used: make(map[int]state, n)}, nil
}

// Registers returns the number of registers the object occupies, the
// paper's min(n+2m−k, n).
func (a *Agreement) Registers() int { return a.alg.Registers() }

// Propose submits value v as process id (0 ≤ id < n) and returns the
// decided value. Each id may propose exactly once. Propose blocks until a
// decision is reached or ctx is cancelled; cancellation leaves the id
// poisoned (its half-finished operation cannot be resumed).
func (a *Agreement) Propose(ctx context.Context, id, v int) (int, error) {
	if id < 0 || id >= a.alg.Params().N {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadID, id, a.alg.Params().N)
	}
	a.mu.Lock()
	switch a.used[id] {
	case stateFree:
		a.used[id] = stateBusy
	case stateBusy:
		a.mu.Unlock()
		return 0, ErrInUse
	case stateDone:
		a.mu.Unlock()
		return 0, ErrAlreadyProposed
	case statePoisoned:
		a.mu.Unlock()
		return 0, ErrPoisoned
	}
	a.mu.Unlock()

	out, err := a.rt.propose(ctx, a.alg.NewProcess(id), id, v)

	a.mu.Lock()
	if err != nil {
		a.used[id] = statePoisoned
	} else {
		a.used[id] = stateDone
	}
	a.mu.Unlock()
	return out, err
}

// Repeated is an m-obstruction-free repeated k-set agreement object: an
// unbounded sequence of independent k-set agreement instances accessed in
// order, over the same min(n+2m−k, n) registers.
type Repeated struct {
	alg   *core.Repeated
	rt    *runtime
	mu    sync.Mutex
	procs map[int]*repProcState
}

type repProcState struct {
	proc core.Process
	st   state
}

// NewRepeated builds a repeated agreement object for n processes and at
// most k distinct decisions per instance.
func NewRepeated(n, k int, opts ...Option) (*Repeated, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	alg, err := core.NewRepeated(core.Params{N: n, M: o.m, K: k})
	if err != nil {
		return nil, err
	}
	rt, err := newRuntime(alg, o, false)
	if err != nil {
		return nil, err
	}
	return &Repeated{alg: alg, rt: rt, procs: make(map[int]*repProcState, n)}, nil
}

// Registers returns the number of registers the object occupies.
func (r *Repeated) Registers() int { return r.alg.Registers() }

// Propose submits process id's value for its next instance (its first call
// accesses instance 1, the second instance 2, and so on) and returns the
// decided value for that instance.
func (r *Repeated) Propose(ctx context.Context, id, v int) (int, error) {
	if id < 0 || id >= r.alg.Params().N {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadID, id, r.alg.Params().N)
	}
	r.mu.Lock()
	ps := r.procs[id]
	if ps == nil {
		ps = &repProcState{proc: r.alg.NewProcess(id)}
		r.procs[id] = ps
	}
	switch ps.st {
	case stateBusy:
		r.mu.Unlock()
		return 0, ErrInUse
	case statePoisoned:
		r.mu.Unlock()
		return 0, ErrPoisoned
	}
	ps.st = stateBusy
	r.mu.Unlock()

	out, err := r.rt.propose(ctx, ps.proc, id, v)

	r.mu.Lock()
	if err != nil {
		ps.st = statePoisoned
	} else {
		ps.st = stateFree
	}
	r.mu.Unlock()
	return out, err
}

// Anonymous is the anonymous k-set agreement object of Figure 5:
// participants carry no identifiers and are all programmed identically. The
// repeated form occupies (m+1)(n−k)+m²+1 registers; the one-shot form saves
// the helper register H.
type Anonymous struct {
	alg      *core.AnonRepeated
	rt       *runtime
	oneShot  bool
	mu       sync.Mutex
	sessions int
}

// NewAnonymous builds an anonymous repeated agreement object for up to n
// concurrent participants. Anonymous objects support only the atomic and
// double-collect snapshot runtimes (the others need process identifiers).
func NewAnonymous(n, k int, opts ...Option) (*Anonymous, error) {
	return newAnonymous(n, k, false, opts)
}

// NewAnonymousOneShot builds the one-shot variant: each session proposes at
// most once, and the object occupies one register fewer ((m+1)(n−k)+m², the
// anonymous one-shot cell of the paper's Figure 1).
func NewAnonymousOneShot(n, k int, opts ...Option) (*Anonymous, error) {
	return newAnonymous(n, k, true, opts)
}

func newAnonymous(n, k int, oneShot bool, opts []Option) (*Anonymous, error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	var (
		alg    *core.AnonRepeated
		algErr error
	)
	if oneShot {
		alg, algErr = core.NewAnonOneShot(core.Params{N: n, M: o.m, K: k})
	} else {
		alg, algErr = core.NewAnonRepeated(core.Params{N: n, M: o.m, K: k})
	}
	if algErr != nil {
		return nil, algErr
	}
	rt, err := newRuntime(alg, o, true)
	if err != nil {
		return nil, err
	}
	return &Anonymous{alg: alg, rt: rt, oneShot: oneShot}, nil
}

// Registers returns the number of registers the object occupies.
func (a *Anonymous) Registers() int { return a.alg.Registers() }

// Session registers a new anonymous participant. At most n sessions may be
// created; a session is not safe for concurrent use (it is one process).
func (a *Anonymous) Session() (*Session, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sessions >= a.alg.Params().N {
		return nil, fmt.Errorf("%w: n=%d", ErrTooManySessions, a.alg.Params().N)
	}
	a.sessions++
	return &Session{parent: a, proc: a.alg.NewProcess(sim.Anonymous)}, nil
}

// Session is one anonymous participant's handle.
type Session struct {
	parent *Anonymous
	proc   core.Process
	st     state
}

// Propose submits the session's value for its next instance and returns the
// decided value. Sessions of one-shot objects may propose once.
func (s *Session) Propose(ctx context.Context, v int) (int, error) {
	switch s.st {
	case stateBusy:
		return 0, ErrInUse
	case stateDone:
		return 0, ErrAlreadyProposed
	case statePoisoned:
		return 0, ErrPoisoned
	}
	s.st = stateBusy
	out, err := s.parent.rt.propose(ctx, s.proc, sim.Anonymous, v)
	if err != nil {
		s.st = statePoisoned
		return 0, err
	}
	if s.parent.oneShot {
		s.st = stateDone
	} else {
		s.st = stateFree
	}
	return out, nil
}

// state tracks per-process lifecycle in the facade.
type state uint8

const (
	stateFree state = iota
	stateBusy
	stateDone
	statePoisoned
)

// runtime owns the per-Propose view of the native shared memory: wrap
// yields one process's handle over the backend memory allocated by
// Materialize. The memory comes from the configured backend
// (WithMemoryBackend); the runtime itself is backend-agnostic.
type runtime struct {
	wrap func(id int) shmem.Mem
	opts options
}

func newRuntime(alg core.Algorithm, o options, anonymous bool) (*runtime, error) {
	impl := o.impl.internal()
	if anonymous && (impl == snapshot.ImplMW || impl == snapshot.ImplSWEmulation) {
		return nil, fmt.Errorf("setagreement: snapshot runtime %v needs process identifiers; anonymous objects support SnapshotAtomic or SnapshotDoubleCollect", o.impl)
	}
	_, wrap, err := snapshot.Materialize(alg.Spec(), impl, alg.Params().N, o.backend.internal())
	if err != nil {
		return nil, err
	}
	return &runtime{wrap: wrap, opts: o}, nil
}

// cancelPanic unwinds a Propose blocked inside the algorithm loop when its
// context is cancelled. It never escapes propose.
type cancelPanic struct{ err error }

func (rt *runtime) propose(ctx context.Context, proc core.Process, id, v int) (out int, err error) {
	var mem shmem.Mem = &guardMem{inner: rt.wrap(id), ctx: ctx, backoff: rt.opts.newBackoff()}
	defer func() {
		if r := recover(); r != nil {
			cp, ok := r.(cancelPanic)
			if !ok {
				panic(r)
			}
			err = cp.err
		}
	}()
	return proc.Propose(mem, v), nil
}
