package setagreement_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"setagreement"
)

// claimAll claims handles 0..n-1 on a one-shot object, failing the test on
// any claim error.
func claimAll[T comparable](t *testing.T, a *setagreement.Agreement[T], n int) []*setagreement.Handle[T] {
	t.Helper()
	handles := make([]*setagreement.Handle[T], n)
	for id := 0; id < n; id++ {
		h, err := a.Proc(id)
		if err != nil {
			t.Fatalf("Proc(%d): %v", id, err)
		}
		handles[id] = h
	}
	return handles
}

func TestOneShotConcurrentGoroutines(t *testing.T) {
	for _, impl := range []setagreement.SnapshotImpl{
		setagreement.SnapshotAtomic,
		setagreement.SnapshotWaitFree,
		setagreement.SnapshotSingleWriter,
		setagreement.SnapshotDoubleCollect,
	} {
		t.Run(impl.String(), func(t *testing.T) {
			const n, k = 6, 2
			a, err := setagreement.New[int](n, k,
				setagreement.WithSnapshot(impl),
				setagreement.WithBackoff(time.Microsecond, time.Millisecond, 64),
			)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			handles := claimAll(t, a, n)
			results := make([]int, n)
			var wg sync.WaitGroup
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for id := 0; id < n; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					out, err := handles[id].Propose(ctx, 100+id)
					if err != nil {
						t.Errorf("propose %d: %v", id, err)
						return
					}
					results[id] = out
				}(id)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			distinct := make(map[int]bool)
			for id, v := range results {
				if v < 100 || v >= 100+n {
					t.Fatalf("process %d decided non-input %d", id, v)
				}
				distinct[v] = true
			}
			if len(distinct) > k {
				t.Fatalf("k-agreement violated: %v", results)
			}
		})
	}
}

func TestMemoryBackends(t *testing.T) {
	// Every snapshot runtime must reach agreement on every memory backend:
	// the backend changes only how atomic steps are synchronized.
	for _, backend := range []setagreement.MemoryBackend{
		setagreement.BackendLockFree,
		setagreement.BackendLocked,
	} {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			for _, impl := range []setagreement.SnapshotImpl{
				setagreement.SnapshotAtomic,
				setagreement.SnapshotWaitFree,
				setagreement.SnapshotSingleWriter,
				setagreement.SnapshotDoubleCollect,
			} {
				t.Run(impl.String(), func(t *testing.T) {
					const n, k = 5, 2
					a, err := setagreement.New[int](n, k,
						setagreement.WithSnapshot(impl),
						setagreement.WithMemoryBackend(backend),
						setagreement.WithBackoff(time.Microsecond, time.Millisecond, 64),
					)
					if err != nil {
						t.Fatalf("New: %v", err)
					}
					handles := claimAll(t, a, n)
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					results := make([]int, n)
					var wg sync.WaitGroup
					for id := 0; id < n; id++ {
						wg.Add(1)
						go func(id int) {
							defer wg.Done()
							out, err := handles[id].Propose(ctx, 100+id)
							if err != nil {
								t.Errorf("propose %d: %v", id, err)
								return
							}
							results[id] = out
						}(id)
					}
					wg.Wait()
					if t.Failed() {
						return
					}
					distinct := make(map[int]bool)
					for id, v := range results {
						if v < 100 || v >= 100+n {
							t.Fatalf("process %d decided non-input %d", id, v)
						}
						distinct[v] = true
					}
					if len(distinct) > k {
						t.Fatalf("k-agreement violated: %v", results)
					}
				})
			}
		})
	}
}

func TestMemoryBackendStrings(t *testing.T) {
	if got := setagreement.BackendLockFree.String(); got != "lockfree" {
		t.Fatalf("BackendLockFree = %q", got)
	}
	if got := setagreement.BackendLocked.String(); got != "locked" {
		t.Fatalf("BackendLocked = %q", got)
	}
	if _, err := setagreement.New[int](3, 1, setagreement.WithMemoryBackend(setagreement.MemoryBackend(99))); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestOneShotLifecycleErrors(t *testing.T) {
	a, err := setagreement.New[int](3, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	if _, err := a.Proc(5); !errors.Is(err, setagreement.ErrBadID) {
		t.Fatalf("bad id err = %v", err)
	}
	if _, err := a.Proc(-1); !errors.Is(err, setagreement.ErrBadID) {
		t.Fatalf("negative id err = %v", err)
	}
	h, err := a.Proc(0)
	if err != nil {
		t.Fatalf("Proc(0): %v", err)
	}
	if _, err := a.Proc(0); !errors.Is(err, setagreement.ErrInUse) {
		t.Fatalf("double claim err = %v", err)
	}
	if got := h.ID(); got != 0 {
		t.Fatalf("ID = %d", got)
	}
	if _, err := h.Propose(ctx, 7); err != nil {
		t.Fatalf("first propose: %v", err)
	}
	if _, err := h.Propose(ctx, 8); !errors.Is(err, setagreement.ErrAlreadyProposed) {
		t.Fatalf("second propose err = %v", err)
	}
	if got := a.Registers(); got != 3 { // min(n+2m-k, n) = min(4, 3)
		t.Fatalf("Registers = %d, want 3", got)
	}
}

func TestRepeatedSequenceAgreement(t *testing.T) {
	const n, k, rounds = 4, 1, 5
	r, err := setagreement.NewRepeated[int](n, k)
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	decided := make([][]int, n)
	for id := 0; id < n; id++ {
		h, err := r.Proc(id)
		if err != nil {
			t.Fatalf("Proc(%d): %v", id, err)
		}
		wg.Add(1)
		go func(id int, h *setagreement.Handle[int]) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				out, err := h.Propose(ctx, 1000*round+id)
				if err != nil {
					t.Errorf("propose %d/%d: %v", id, round, err)
					return
				}
				decided[id] = append(decided[id], out)
			}
		}(id, h)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Consensus per instance: all processes agree on each round.
	for round := 0; round < rounds; round++ {
		want := decided[0][round]
		for id := 1; id < n; id++ {
			if decided[id][round] != want {
				t.Fatalf("round %d: process %d decided %d, process 0 decided %d",
					round, id, decided[id][round], want)
			}
		}
	}
}

func TestAnonymousSessions(t *testing.T) {
	const n, k = 5, 2
	a, err := setagreement.NewAnonymous[int](n, k)
	if err != nil {
		t.Fatalf("NewAnonymous: %v", err)
	}
	if want := (1+1)*(n-k) + 1 + 1; a.Registers() != want {
		t.Fatalf("Registers = %d, want %d", a.Registers(), want)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		s, err := a.Session()
		if err != nil {
			t.Fatalf("Session %d: %v", i, err)
		}
		if got := s.ID(); got != -1 {
			t.Fatalf("anonymous session ID = %d, want -1", got)
		}
		wg.Add(1)
		go func(i int, s *setagreement.Handle[int]) {
			defer wg.Done()
			out, err := s.Propose(ctx, 100+i)
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			results[i] = out
		}(i, s)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	distinct := make(map[int]bool)
	for _, v := range results {
		distinct[v] = true
	}
	if len(distinct) > k {
		t.Fatalf("k-agreement violated: %v", results)
	}
	if _, err := a.Session(); !errors.Is(err, setagreement.ErrTooManySessions) {
		t.Fatalf("session overflow err = %v", err)
	}
}

func TestAnonymousOneShot(t *testing.T) {
	const n, k = 4, 2
	a, err := setagreement.NewAnonymousOneShot[int](n, k)
	if err != nil {
		t.Fatalf("NewAnonymousOneShot: %v", err)
	}
	// One register fewer than the repeated variant.
	rep, err := setagreement.NewAnonymous[int](n, k)
	if err != nil {
		t.Fatalf("NewAnonymous: %v", err)
	}
	if a.Registers() != rep.Registers()-1 {
		t.Fatalf("one-shot regs = %d, repeated = %d; want a difference of 1",
			a.Registers(), rep.Registers())
	}
	s, err := a.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	ctx := context.Background()
	if _, err := s.Propose(ctx, 5); err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if _, err := s.Propose(ctx, 6); !errors.Is(err, setagreement.ErrAlreadyProposed) {
		t.Fatalf("second propose err = %v", err)
	}
}

func TestAnonymousRejectsIdentifiedSnapshots(t *testing.T) {
	if _, err := setagreement.NewAnonymous[int](4, 2, setagreement.WithSnapshot(setagreement.SnapshotWaitFree)); err == nil {
		t.Fatal("anonymous object accepted an identified snapshot runtime")
	}
	if _, err := setagreement.NewAnonymous[int](4, 2, setagreement.WithSnapshot(setagreement.SnapshotDoubleCollect)); err != nil {
		t.Fatalf("double-collect should be allowed: %v", err)
	}
}

func TestProposeCancellation(t *testing.T) {
	// With n=2, k=1, m=1 and only one process proposing, a solo propose
	// decides quickly. To exercise cancellation deterministically, use an
	// already-cancelled context.
	a, err := setagreement.New[int](2, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h, err := a.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.Propose(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled propose err = %v", err)
	}
	// The handle is poisoned afterwards.
	if _, err := h.Propose(context.Background(), 1); !errors.Is(err, setagreement.ErrPoisoned) {
		t.Fatalf("poisoned propose err = %v", err)
	}
	// Other handles are unaffected.
	other, err := a.Proc(1)
	if err != nil {
		t.Fatalf("Proc(1): %v", err)
	}
	if _, err := other.Propose(context.Background(), 9); err != nil {
		t.Fatalf("other handle: %v", err)
	}
}

func TestBackoffSleepHonorsContext(t *testing.T) {
	// A Propose that is asleep in backoff must observe cancellation
	// promptly rather than finishing the sleep. Backoff of min = max = 1h
	// with window 1 puts the very first shared-memory operation to sleep
	// for an hour; cancellation after 50ms must unwind it immediately.
	r, err := setagreement.NewRepeated[int](2, 1,
		setagreement.WithBackoff(time.Hour, time.Hour, 1))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = h.Propose(ctx, 1)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("propose err = %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled propose took %v; backoff sleep ignored the context", elapsed)
	}
	if got := h.Stats().WaitTime; got <= 0 {
		t.Fatalf("WaitTime = %v after sleeping in backoff", got)
	}
}

func TestConcurrentProposeOnOneHandleRejected(t *testing.T) {
	// A handle is one process: overlapping Proposes are rejected with
	// ErrInUse, never interleaved. Force overlap by brute force: many
	// concurrent Proposes on one handle, count ErrInUse — at least zero
	// (no overlap) and never a data race.
	r, err := setagreement.NewRepeated[int](2, 1)
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	ctx := context.Background()
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		inUse  int
		others []error
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, err := h.Propose(ctx, g)
			mu.Lock()
			defer mu.Unlock()
			if errors.Is(err, setagreement.ErrInUse) {
				inUse++
				return
			}
			if err != nil {
				others = append(others, err)
			}
		}(g)
	}
	wg.Wait()
	if len(others) != 0 {
		t.Fatalf("unexpected errors: %v", others)
	}
	// Whatever overlapped was rejected; the handle remains usable.
	if _, err := h.Propose(ctx, 99); err != nil {
		t.Fatalf("handle unusable after contention: %v", err)
	}
	t.Logf("%d overlapping calls rejected with ErrInUse", inUse)
}

func TestOptionValidation(t *testing.T) {
	if _, err := setagreement.New[int](4, 2, setagreement.WithObstruction(0)); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := setagreement.New[int](4, 2, setagreement.WithObstruction(3)); err == nil {
		t.Fatal("m>k accepted")
	}
	// The backoff schedule is validated at construction, for every entry
	// point: non-positive durations, inverted bounds and a degenerate
	// window are all rejected before any handle exists.
	if _, err := setagreement.New[int](4, 2, setagreement.WithBackoff(0, time.Second, 1)); err == nil {
		t.Fatal("zero backoff min accepted")
	}
	if _, err := setagreement.New[int](4, 2, setagreement.WithBackoff(-time.Second, time.Second, 1)); err == nil {
		t.Fatal("negative backoff min accepted")
	}
	if _, err := setagreement.New[int](4, 2, setagreement.WithBackoff(time.Second, time.Millisecond, 1)); err == nil {
		t.Fatal("backoff min > max accepted")
	}
	if _, err := setagreement.New[int](4, 2, setagreement.WithBackoff(time.Millisecond, time.Second, 0)); err == nil {
		t.Fatal("zero backoff window accepted")
	}
	if _, err := setagreement.New[int](4, 2, setagreement.WithBackoff(time.Millisecond, time.Second, -3)); err == nil {
		t.Fatal("negative backoff window accepted")
	}
	if _, err := setagreement.NewRepeated[int](4, 2, setagreement.WithBackoff(time.Second, time.Millisecond, 8)); err == nil {
		t.Fatal("NewRepeated accepted an invalid backoff")
	}
	if _, err := setagreement.NewArena[int](4, 2, setagreement.WithObjectOptions(setagreement.WithBackoff(time.Second, time.Millisecond, 8))); err == nil {
		t.Fatal("NewArena accepted an invalid backoff in its object mold")
	}
	if _, err := setagreement.New[int](4, 2, setagreement.WithWaitStrategy(setagreement.WaitStrategy(42))); err == nil {
		t.Fatal("unknown wait strategy accepted")
	}
	if _, err := setagreement.New[int](4, 2, setagreement.WithSnapshot(setagreement.SnapshotImpl(42))); err == nil {
		t.Fatal("unknown snapshot impl accepted")
	}
	if _, err := setagreement.New[int](4, 4); err == nil {
		t.Fatal("k=n accepted")
	}
	if _, err := setagreement.New[int](4, 2, setagreement.WithCodec[string](nil)); err == nil {
		t.Fatal("nil codec accepted")
	}
	// A codec for the wrong domain fails at construction, not at Propose.
	if _, err := setagreement.New[string](4, 2, setagreement.WithCodec(setagreement.IdentityCodec())); err == nil {
		t.Fatal("codec domain mismatch accepted")
	}
}

func TestObstructionDegreeRegisters(t *testing.T) {
	// min(n+2m−k, n) register accounting through the facade.
	tests := []struct {
		n, m, k int
		want    int
	}{
		{n: 8, m: 1, k: 3, want: 7},  // 8+2-3
		{n: 8, m: 3, k: 3, want: 8},  // 8+6-3=11 capped at 8
		{n: 10, m: 2, k: 5, want: 9}, // 10+4-5
	}
	for _, tt := range tests {
		a, err := setagreement.New[int](tt.n, tt.k, setagreement.WithObstruction(tt.m))
		if err != nil {
			t.Fatalf("New(%d,%d,m=%d): %v", tt.n, tt.k, tt.m, err)
		}
		if got := a.Registers(); got != tt.want {
			t.Errorf("n=%d m=%d k=%d: Registers = %d, want %d", tt.n, tt.m, tt.k, got, tt.want)
		}
	}
}
