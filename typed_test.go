package setagreement_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"setagreement"
)

// calibration is the struct domain used by the typed round-trip suite:
// typed values must survive the trip through the int core on every entry
// point and backend.
type calibration struct {
	Sensor string
	Value  int
}

var bothBackends = []setagreement.MemoryBackend{
	setagreement.BackendLockFree,
	setagreement.BackendLocked,
}

// TestTypedOneShotRoundTrip runs concurrent string- and struct-valued
// one-shot agreement across both memory backends: every decision must be
// a decoded copy of some process's typed input, with at most k distinct.
func TestTypedOneShotRoundTrip(t *testing.T) {
	const n, k = 5, 2
	for _, backend := range bothBackends {
		t.Run(backend.String(), func(t *testing.T) {
			t.Run("string", func(t *testing.T) {
				a, err := setagreement.New[string](n, k,
					setagreement.WithMemoryBackend(backend),
					setagreement.WithBackoff(time.Microsecond, time.Millisecond, 64),
				)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				inputs := make(map[string]bool, n)
				for id := 0; id < n; id++ {
					inputs[fmt.Sprintf("value-%d", id)] = true
				}
				results := runTypedOneShot(t, a, n, func(id int) string {
					return fmt.Sprintf("value-%d", id)
				})
				if t.Failed() {
					return
				}
				checkDecisions(t, results, inputs, k)
			})
			t.Run("struct", func(t *testing.T) {
				a, err := setagreement.New[calibration](n, k,
					setagreement.WithMemoryBackend(backend),
					setagreement.WithBackoff(time.Microsecond, time.Millisecond, 64),
				)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				inputs := make(map[calibration]bool, n)
				for id := 0; id < n; id++ {
					inputs[calibration{Sensor: fmt.Sprintf("s%d", id), Value: 500 + id}] = true
				}
				results := runTypedOneShot(t, a, n, func(id int) calibration {
					return calibration{Sensor: fmt.Sprintf("s%d", id), Value: 500 + id}
				})
				if t.Failed() {
					return
				}
				checkDecisions(t, results, inputs, k)
			})
		})
	}
}

func runTypedOneShot[T comparable](t *testing.T, a *setagreement.Agreement[T], n int, input func(id int) T) []T {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	results := make([]T, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		h, err := a.Proc(id)
		if err != nil {
			t.Fatalf("Proc(%d): %v", id, err)
		}
		wg.Add(1)
		go func(id int, h *setagreement.Handle[T]) {
			defer wg.Done()
			out, err := h.Propose(ctx, input(id))
			if err != nil {
				t.Errorf("propose %d: %v", id, err)
				return
			}
			results[id] = out
		}(id, h)
	}
	wg.Wait()
	return results
}

func checkDecisions[T comparable](t *testing.T, results []T, inputs map[T]bool, k int) {
	t.Helper()
	distinct := make(map[T]bool)
	for id, v := range results {
		if !inputs[v] {
			t.Fatalf("process %d decided non-input %v", id, v)
		}
		distinct[v] = true
	}
	if len(distinct) > k {
		t.Fatalf("k-agreement violated: %v", results)
	}
}

// TestTypedRepeatedRoundTrip drives string-valued repeated consensus on
// both backends: identical decision sequences at every process, all drawn
// from that round's typed inputs.
func TestTypedRepeatedRoundTrip(t *testing.T) {
	const n, rounds = 3, 4
	for _, backend := range bothBackends {
		t.Run(backend.String(), func(t *testing.T) {
			r, err := setagreement.NewRepeated[string](n, 1,
				setagreement.WithMemoryBackend(backend),
				setagreement.WithBackoff(time.Microsecond, time.Millisecond, 64),
			)
			if err != nil {
				t.Fatalf("NewRepeated: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			decided := make([][]string, n)
			var wg sync.WaitGroup
			for id := 0; id < n; id++ {
				h, err := r.Proc(id)
				if err != nil {
					t.Fatalf("Proc(%d): %v", id, err)
				}
				wg.Add(1)
				go func(id int, h *setagreement.Handle[string]) {
					defer wg.Done()
					for round := 0; round < rounds; round++ {
						out, err := h.Propose(ctx, fmt.Sprintf("r%d-p%d", round, id))
						if err != nil {
							t.Errorf("propose %d/%d: %v", id, round, err)
							return
						}
						decided[id] = append(decided[id], out)
					}
				}(id, h)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			for round := 0; round < rounds; round++ {
				want := decided[0][round]
				prefix := fmt.Sprintf("r%d-p", round)
				if len(want) < len(prefix) || want[:len(prefix)] != prefix {
					t.Fatalf("round %d decided %q, not an input of that round", round, want)
				}
				for id := 1; id < n; id++ {
					if decided[id][round] != want {
						t.Fatalf("round %d split: %q vs %q", round, decided[id][round], want)
					}
				}
			}
		})
	}
}

// TestTypedAnonymousRoundTrip runs struct-valued anonymous agreement on
// both backends.
func TestTypedAnonymousRoundTrip(t *testing.T) {
	const n, k = 4, 2
	for _, backend := range bothBackends {
		t.Run(backend.String(), func(t *testing.T) {
			a, err := setagreement.NewAnonymous[calibration](n, k,
				setagreement.WithMemoryBackend(backend),
				setagreement.WithBackoff(time.Microsecond, time.Millisecond, 64),
			)
			if err != nil {
				t.Fatalf("NewAnonymous: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			inputs := make(map[calibration]bool, n)
			results := make([]calibration, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				in := calibration{Sensor: fmt.Sprintf("anon-%d", i), Value: i}
				inputs[in] = true
				s, err := a.Session()
				if err != nil {
					t.Fatalf("Session %d: %v", i, err)
				}
				wg.Add(1)
				go func(i int, in calibration, s *setagreement.Handle[calibration]) {
					defer wg.Done()
					out, err := s.Propose(ctx, in)
					if err != nil {
						t.Errorf("session %d: %v", i, err)
						return
					}
					results[i] = out
				}(i, in, s)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			checkDecisions(t, results, inputs, k)
		})
	}
}

// TestCustomCodec plugs an application codec (stable enum codes) into a
// typed object in place of the interning default.
func TestCustomCodec(t *testing.T) {
	codec := colorCodec{}
	a, err := setagreement.New[string](3, 1, setagreement.WithCodec[string](codec))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h, err := a.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	out, err := h.Propose(context.Background(), "green")
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	if out != "green" {
		t.Fatalf("decided %q, want green (solo run)", out)
	}
}

// colorCodec is a fixed-table codec: codes are stable across objects,
// unlike first-seen interning. Its domain is exactly the table — Encode
// must be injective, so values outside it are a caller bug.
type colorCodec struct{}

var colors = []string{"red", "green", "blue"}

func (colorCodec) Encode(v string) int {
	for i, c := range colors {
		if c == v {
			return i
		}
	}
	panic(fmt.Sprintf("color %q outside the codec domain", v))
}

func (colorCodec) Decode(code int) (string, error) {
	if code < 0 || code >= len(colors) {
		return "", fmt.Errorf("unknown color code %d", code)
	}
	return colors[code], nil
}

// TestHandleLifecycleTyped exercises the unified handle state machine on a
// typed object: double-claim, poisoning after cancellation, and one-shot
// exhaustion.
func TestHandleLifecycleTyped(t *testing.T) {
	a, err := setagreement.New[string](3, 1)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h, err := a.Proc(1)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	if _, err := a.Proc(1); !errors.Is(err, setagreement.ErrInUse) {
		t.Fatalf("double claim err = %v", err)
	}

	// Cancellation poisons.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.Propose(ctx, "x"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled propose err = %v", err)
	}
	if _, err := h.Propose(context.Background(), "y"); !errors.Is(err, setagreement.ErrPoisoned) {
		t.Fatalf("poisoned propose err = %v", err)
	}

	// A fresh handle proposes once on a one-shot object, then is done.
	h2, err := a.Proc(2)
	if err != nil {
		t.Fatalf("Proc(2): %v", err)
	}
	if _, err := h2.Propose(context.Background(), "z"); err != nil {
		t.Fatalf("propose: %v", err)
	}
	if _, err := h2.Propose(context.Background(), "w"); !errors.Is(err, setagreement.ErrAlreadyProposed) {
		t.Fatalf("second propose err = %v", err)
	}

	// Anonymous sessions share the same lifecycle.
	anon, err := setagreement.NewAnonymousOneShot[string](2, 1)
	if err != nil {
		t.Fatalf("NewAnonymousOneShot: %v", err)
	}
	s, err := anon.Session()
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	if _, err := s.Propose(context.Background(), "once"); err != nil {
		t.Fatalf("session propose: %v", err)
	}
	if _, err := s.Propose(context.Background(), "twice"); !errors.Is(err, setagreement.ErrAlreadyProposed) {
		t.Fatalf("session second propose err = %v", err)
	}
}

// TestHandleStats checks the per-handle instrumentation: counters start at
// zero, grow with proposes, and the object-wide backend counters are
// visible through every handle.
func TestHandleStats(t *testing.T) {
	r, err := setagreement.NewRepeated[int](2, 1)
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	if s := h.Stats(); s.Proposes != 0 || s.Steps != 0 || s.Scans != 0 || s.WaitTime != 0 {
		t.Fatalf("fresh handle stats = %+v", s)
	}
	ctx := context.Background()
	const rounds = 3
	for i := 0; i < rounds; i++ {
		if _, err := h.Propose(ctx, i); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}
	s := h.Stats()
	if s.Proposes != rounds {
		t.Fatalf("Proposes = %d, want %d", s.Proposes, rounds)
	}
	if s.Steps == 0 {
		t.Fatalf("Steps = 0 after %d proposes", rounds)
	}
	if s.Scans == 0 || s.Scans > s.Steps {
		t.Fatalf("Scans = %d (Steps = %d)", s.Scans, s.Steps)
	}
	if s.MemSteps < s.Steps {
		t.Fatalf("MemSteps = %d < handle Steps = %d", s.MemSteps, s.Steps)
	}
	if s.CASRetries != 0 {
		t.Fatalf("CASRetries = %d on a solo run", s.CASRetries)
	}
	// A second handle sees the same object-wide counters but its own
	// per-handle ones.
	h1, err := r.Proc(1)
	if err != nil {
		t.Fatalf("Proc(1): %v", err)
	}
	s1 := h1.Stats()
	if s1.Steps != 0 || s1.Proposes != 0 {
		t.Fatalf("second handle inherited per-handle stats: %+v", s1)
	}
	if s1.MemSteps < s.Steps {
		t.Fatalf("object-wide MemSteps not shared: %d", s1.MemSteps)
	}
}
