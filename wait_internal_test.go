package setagreement

import (
	"context"
	"errors"
	goruntime "runtime"
	"testing"
	"time"

	"setagreement/internal/register"
	"setagreement/internal/shmem"
)

// newNotifyGuard builds a guardMem over a fresh lock-free memory with the
// given strategy and an hour-long wait cap at every operation (window 1), so
// any wait the strategy arms is effectively unbounded and the tests below
// observe exactly when it blocks and when it does not.
func newNotifyGuard(t *testing.T, strategy WaitStrategy) (*guardMem, *register.LockFree) {
	t.Helper()
	mem, err := register.NewLockFree(shmem.Spec{Regs: 2})
	if err != nil {
		t.Fatalf("NewLockFree: %v", err)
	}
	g := &guardMem{
		inner:       mem,
		notifier:    mem,
		notifyExact: true,
		wait: &waitPlan{
			strategy: strategy,
			backoff:  backoffState{min: time.Hour, max: time.Hour, window: 1},
		},
		stats: &handleStats{},
	}
	g.cur = g.wait // what run() does at the top of every sync Propose
	return g, mem
}

// awaitMemWaiters spins (tightly: a yielding poll samples only at scheduler
// transition points and can miss short-lived waits) until the notifier
// reports at least want blocked waiters.
func awaitMemWaiters(t *testing.T, nt shmem.Notifier, want int64) {
	t.Helper()
	if !pollWaiters(nt, want, 10*time.Second) {
		t.Fatalf("never reached %d waiters (have %d)", want, nt.Waiters())
	}
}

func pollWaiters(nt shmem.Notifier, want int64, budget time.Duration) bool {
	deadline := time.Now().Add(budget)
	for i := 0; nt.Waiters() < want; i++ {
		if time.Now().After(deadline) {
			return false
		}
		if i%(1<<16) == 0 {
			goruntime.Gosched() // let single-core schedulers run the waiters
		}
	}
	return true
}

// TestNotifyWaitCancellationReleasesWaiter is the satellite's deterministic
// core: a process blocked in a notify-wait whose context is cancelled must
// unwind promptly (the cancelPanic that poisons the handle) and leave no
// waiter registered on the memory.
func TestNotifyWaitCancellationReleasesWaiter(t *testing.T) {
	for _, strategy := range []WaitStrategy{WaitNotify, WaitHybrid} {
		t.Run(strategy.String(), func(t *testing.T) {
			g, mem := newNotifyGuard(t, strategy)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			g.ctx = ctx
			g.resetWait()
			// A foreign write after the baseline: the next yield point sees
			// contention and arms the blocking wait (cap: one hour).
			mem.Write(0, "foreign")
			done := make(chan error, 1)
			go func() {
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							cp, ok := r.(cancelPanic)
							if !ok {
								panic(r)
							}
							err = cp.err
						}
					}()
					g.Read(0)
					return nil
				}()
				done <- err
			}()
			awaitMemWaiters(t, mem, 1)
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("blocked operation unwound with %v, want context.Canceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cancellation did not release the blocked wait")
			}
			if got := mem.Waiters(); got != 0 {
				t.Fatalf("%d waiters leaked on the memory after cancellation", got)
			}
			if got := g.stats.wakeups.Load(); got != 0 {
				t.Fatalf("Wakeups = %d for a wait that was cancelled, want 0", got)
			}
			if got := g.stats.waitNS.Load(); got <= 0 {
				t.Fatalf("WaitTime = %d after a real blocked wait", got)
			}
		})
	}
}

// TestNotifySoloNeverBlocks pins the obstruction-freedom property of the
// event-driven strategies: a process that has seen no foreign write since
// its previous yield point skips the wait entirely, so a solo run is never
// put to sleep — even with an hour-long cap at every single operation.
func TestNotifySoloNeverBlocks(t *testing.T) {
	for _, strategy := range []WaitStrategy{WaitNotify, WaitHybrid} {
		t.Run(strategy.String(), func(t *testing.T) {
			g, _ := newNotifyGuard(t, strategy)
			g.resetWait()
			start := time.Now()
			for i := 0; i < 100; i++ {
				g.Write(0, i)
				_ = g.Read(0)
			}
			if elapsed := time.Since(start); elapsed > 10*time.Second {
				t.Fatalf("solo run of 200 guarded ops took %v; a wait was armed with no one to wake it", elapsed)
			}
			if got := g.stats.wakeups.Load(); got != 0 {
				t.Fatalf("solo run recorded %d wakeups", got)
			}
		})
	}
}

// TestNotifyWakeupOnForeignWrite: a blocked wait ends as soon as another
// process writes — the event-driven core of the subsystem — and the wakeup
// is counted.
func TestNotifyWakeupOnForeignWrite(t *testing.T) {
	g, mem := newNotifyGuard(t, WaitNotify)
	g.ctx = context.Background()
	g.resetWait()
	mem.Write(0, "contention") // arm: the next yield sees a foreign write
	done := make(chan struct{})
	go func() {
		_ = g.Read(0) // blocks in the notify wait (cap: one hour)
		close(done)
	}()
	awaitMemWaiters(t, mem, 1)
	mem.Write(1, "the write that wakes the waiter")
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("foreign write did not wake the blocked process")
	}
	if got := g.stats.wakeups.Load(); got != 1 {
		t.Fatalf("Wakeups = %d after one notified wakeup, want 1", got)
	}
	if got := mem.Waiters(); got != 0 {
		t.Fatalf("%d waiters left after wakeup", got)
	}
}

// TestProposeCancelledInNotifyWait is the end-to-end form: two proposers
// contend until both are blocked in notify-waits (each waiting for the
// other to move, capped at an hour), then both contexts are cancelled. The
// Proposes must return promptly, the handles must be poisoned, and the
// object's memory must be left with no registered waiter.
func TestProposeCancelledInNotifyWait(t *testing.T) {
	r, err := NewRepeated[int](2, 1,
		WithWaitStrategy(WaitNotify),
		WithBackoff(time.Hour, time.Hour, 1))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	nt, ok := r.rt.mem.(shmem.Notifier)
	if !ok {
		t.Fatalf("runtime memory %T does not expose shmem.Notifier", r.rt.mem)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := make([]error, 2)
	done := make(chan int, 2)
	handles := make([]*Handle[int], 2)
	for id := range handles {
		if handles[id], err = r.Proc(id); err != nil {
			t.Fatalf("Proc(%d): %v", id, err)
		}
	}
	for id, h := range handles {
		go func(id int, h *Handle[int]) {
			for {
				if _, err := h.Propose(ctx, id); err != nil {
					errs[id] = err
					done <- id
					return
				}
			}
		}(id, h)
	}
	// Under mutual contention a proposer ends up armed; one blocked waiter
	// proves a Propose is inside a notify-wait. Whether and when that
	// happens is scheduler-dependent (the repeated algorithm's history
	// shortcut lets a laggard decide without touching memory), so arming is
	// awaited best-effort: the deterministic blocked-cancellation check is
	// TestNotifyWaitCancellationReleasesWaiter, and the assertions below —
	// prompt return, poisoning, no leaked waiter — must hold either way.
	if !pollWaiters(nt, 1, 5*time.Second) {
		t.Logf("no blocked waiter observed; cancelling proposers mid-step instead")
	}
	start := time.Now()
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case id := <-done:
			if !errors.Is(errs[id], context.Canceled) {
				t.Fatalf("proposer %d returned %v, want context.Canceled", id, errs[id])
			}
		case <-time.After(10 * time.Second):
			t.Fatal("cancelled Propose did not return from its notify-wait")
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if got := nt.Waiters(); got != 0 {
		t.Fatalf("%d waiters leaked on the object after cancellation", got)
	}
	for id, h := range handles {
		if _, err := h.Propose(context.Background(), 9); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("handle %d after cancellation: %v, want ErrPoisoned", id, err)
		}
	}
}
