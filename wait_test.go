package setagreement_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"setagreement"
)

// TestWaitStrategiesAgree drives contended one-shot k-set agreement through
// every wait strategy on both memory backends and checks the agreement
// contract end to end: every Propose decides, at most k distinct values are
// decided, and every decision was somebody's proposal.
func TestWaitStrategiesAgree(t *testing.T) {
	const n, k = 6, 2
	backends := []setagreement.MemoryBackend{setagreement.BackendLockFree, setagreement.BackendLocked}
	strategies := []setagreement.WaitStrategy{
		setagreement.WaitBackoff, setagreement.WaitNotify, setagreement.WaitHybrid,
	}
	for _, be := range backends {
		for _, strat := range strategies {
			t.Run(fmt.Sprintf("%v/%v", be, strat), func(t *testing.T) {
				a, err := setagreement.New[int](n, k,
					setagreement.WithMemoryBackend(be),
					setagreement.WithWaitStrategy(strat),
					setagreement.WithBackoff(50*time.Microsecond, 2*time.Millisecond, 32),
				)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				decisions := make([]int, n)
				var wg sync.WaitGroup
				for id := 0; id < n; id++ {
					h, err := a.Proc(id)
					if err != nil {
						t.Fatalf("Proc(%d): %v", id, err)
					}
					wg.Add(1)
					go func(id int, h *setagreement.Handle[int]) {
						defer wg.Done()
						d, err := h.Propose(ctx, 100+id)
						if err != nil {
							t.Errorf("propose %d: %v", id, err)
							return
						}
						decisions[id] = d
					}(id, h)
				}
				wg.Wait()
				if t.Failed() {
					return
				}
				distinct := make(map[int]bool)
				for id, d := range decisions {
					if d < 100 || d >= 100+n {
						t.Fatalf("process %d decided %d, not a proposed value", id, d)
					}
					distinct[d] = true
				}
				if len(distinct) > k {
					t.Fatalf("%d distinct decisions, want ≤ %d: %v", len(distinct), k, decisions)
				}
			})
		}
	}
}

// TestNotifySoloProposeIsFast is the public face of "notify never blocks a
// solo process": with the notify strategy, an hour-long wait cap and a
// yield before every single operation, a lone proposer must still decide
// immediately — its own writes are not contention. The same configuration
// under WaitBackoff would sleep an hour at the first operation
// (TestBackoffSleepHonorsContext exercises exactly that).
func TestNotifySoloProposeIsFast(t *testing.T) {
	for _, strat := range []setagreement.WaitStrategy{setagreement.WaitNotify, setagreement.WaitHybrid} {
		t.Run(strat.String(), func(t *testing.T) {
			r, err := setagreement.NewRepeated[int](2, 1,
				setagreement.WithWaitStrategy(strat),
				setagreement.WithBackoff(time.Hour, time.Hour, 1))
			if err != nil {
				t.Fatalf("NewRepeated: %v", err)
			}
			h, err := r.Proc(0)
			if err != nil {
				t.Fatalf("Proc: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			for i := 0; i < 5; i++ {
				if _, err := h.Propose(ctx, i); err != nil {
					t.Fatalf("solo propose %d with %v strategy did not run to completion: %v", i, strat, err)
				}
			}
			if s := h.Stats(); s.Wakeups != 0 {
				t.Fatalf("solo proposer recorded %d wakeups", s.Wakeups)
			}
		})
	}
}

// measureStrategyWait runs one lone proposer for a fixed number of rounds
// over a repeated-consensus object with the given strategy and a
// yield-at-every-step schedule, returning its Stats.
func measureStrategyWait(t *testing.T, strat setagreement.WaitStrategy, rounds int) setagreement.Stats {
	t.Helper()
	r, err := setagreement.NewRepeated[int](2, 1,
		setagreement.WithWaitStrategy(strat),
		setagreement.WithBackoff(100*time.Microsecond, 2*time.Millisecond, 1))
	if err != nil {
		t.Fatalf("NewRepeated: %v", err)
	}
	h, err := r.Proc(0)
	if err != nil {
		t.Fatalf("Proc: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := 0; i < rounds; i++ {
		if _, err := h.Propose(ctx, 1000+i); err != nil {
			t.Fatalf("%v round %d: %v", strat, i, err)
		}
	}
	return h.Stats()
}

// TestNotifyWaitsLessThanBackoff encodes the PR's claim as a deterministic
// structural test. Under one identical schedule that yields before every
// shared-memory step, a lone proposer pays the two strategies completely
// differently: blind backoff sleeps before every single step it takes (its
// WaitTime has a hard floor of steps × 100µs), while the event-driven
// strategy proves at each yield that no one else has written and skips the
// wait — zero blocked time. The contended counterpart of this comparison is
// measured, not asserted: `sabench -table waits` and
// BenchmarkWaitStrategies, where notify's p50 beats backoff's at ≥ 4
// proposers by avoiding sleep-to-the-cap latency.
func TestNotifyWaitsLessThanBackoff(t *testing.T) {
	const rounds = 8
	backoff := measureStrategyWait(t, setagreement.WaitBackoff, rounds)
	notify := measureStrategyWait(t, setagreement.WaitNotify, rounds)
	t.Logf("backoff: steps=%d wait=%v; notify: steps=%d wait=%v wakeups=%d spurious=%d",
		backoff.Steps, backoff.WaitTime, notify.Steps, notify.WaitTime, notify.Wakeups, notify.SpuriousWakeups)
	if backoff.WaitTime < time.Duration(backoff.Steps)*100*time.Microsecond {
		t.Fatalf("WaitBackoff slept %v over %d steps, below the 100µs-per-step floor of its schedule",
			backoff.WaitTime, backoff.Steps)
	}
	if notify.WaitTime != 0 {
		t.Fatalf("WaitNotify blocked a solo proposer for %v (WaitBackoff slept %v under the same schedule); solo yields must be skipped",
			notify.WaitTime, backoff.WaitTime)
	}
}
